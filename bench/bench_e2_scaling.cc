// E2 — Theorem 5's cost profile: log(n) * poly(blowup(2k)). Control states
// contribute quasi-linearly (the sub-transition relation is shared across
// states); registers contribute exponentially (the candidate space is the
// atomic diagrams over 2k marks).
#include <benchmark/benchmark.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <future>
#include <memory>

#include "fraisse/relational.h"
#include "net/server.h"
#include "service/service.h"
#include "solver/cache.h"
#include "solver/emptiness.h"
#include "solver/graph.h"
#include "solver/intern.h"
#include "solver/store.h"
#include "system/zoo.h"

// Program-wide heap-allocation counter backing BM_InternThroughput's
// allocs_per_member counter: defining the replaceable global operator
// new/delete here overrides them for the whole binary — the amalgam library
// included — so the memo-hit path's zero-allocation contract is measured,
// not assumed. Counting only; allocation itself stays malloc/free.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};

void* CountedAlloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = CountedAlloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = CountedAlloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace amalgam {
namespace {

// A chain system: n states, each step moves the register along an edge.
DdsSystem ChainSystem(int n, int registers) {
  DdsSystem system(GraphZooSchema());
  std::vector<std::string> regs;
  for (int r = 0; r < registers; ++r) {
    regs.push_back("x" + std::to_string(r));
    system.AddRegister(regs.back());
  }
  int prev = system.AddState("s0", true, n == 1);
  for (int i = 1; i < n; ++i) {
    int next = system.AddState("s" + std::to_string(i), false, i == n - 1);
    std::string guard = "E(x0_old, x0_new)";
    for (int r = 1; r < registers; ++r) {
      guard += " & x" + std::to_string(r) + "_new = x" + std::to_string(r) +
               "_old";
    }
    system.AddRule(prev, next, guard);
    prev = next;
  }
  return system;
}

void BM_StatesSweep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  DdsSystem system = ChainSystem(n, 1);
  AllStructuresClass cls(GraphZooSchema());
  for (auto _ : state) {
    auto r = SolveEmptiness(system, cls, SolveOptions{.build_witness = false});
    benchmark::DoNotOptimize(r.nonempty);
  }
}
BENCHMARK(BM_StatesSweep)->RangeMultiplier(2)->Range(2, 64)->Unit(benchmark::kMillisecond);

// Head-to-head on a nonempty chain instance: the on-the-fly strategy stops
// at the first accepting configuration, the eager reference sweeps the whole
// class. The `members_*` counters expose the gap the engine refactor buys.
void BM_StrategyComparison(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  DdsSystem system = ChainSystem(n, 1);
  AllStructuresClass cls(GraphZooSchema());
  const SolveStrategy strategy = state.range(1) == 0 ? SolveStrategy::kEager
                                                     : SolveStrategy::kOnTheFly;
  SolveResult last;
  for (auto _ : state) {
    last = SolveEmptiness(system, cls,
                          SolveOptions{.build_witness = false,
                                       .strategy = strategy});
    benchmark::DoNotOptimize(last.nonempty);
  }
  state.counters["members"] =
      static_cast<double>(last.stats.members_enumerated);
  state.counters["guard_evals"] =
      static_cast<double>(last.stats.guard_evaluations);
  state.counters["raw_memo_hits"] =
      static_cast<double>(last.stats.raw_memo_hits);
}
BENCHMARK(BM_StrategyComparison)
    ->ArgsProduct({{4, 16, 64}, {0, 1}})
    ->ArgNames({"states", "onthefly"})
    ->Unit(benchmark::kMillisecond);

// Cross-query caching: the first query builds the complete sub-transition
// graph and stores it in a GraphCache; the steady state measured here is a
// pure BFS over interned shape ids — `members` stays 0.
void BM_CachedQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  DdsSystem system = ChainSystem(n, 1);
  AllStructuresClass cls(GraphZooSchema());
  GraphCache cache;
  SolveOptions options;
  options.build_witness = false;
  options.cache = &cache;
  // Warm the cache so every measured iteration is a hit.
  SolveResult last = SolveEmptiness(system, cls, options);
  for (auto _ : state) {
    last = SolveEmptiness(system, cls, options);
    benchmark::DoNotOptimize(last.nonempty);
  }
  state.counters["members"] =
      static_cast<double>(last.stats.members_enumerated);
  state.counters["cache_hits"] = static_cast<double>(cache.hits());
}
BENCHMARK(BM_CachedQuery)
    ->RangeMultiplier(4)
    ->Range(4, 64)
    ->ArgNames({"states"})
    ->Unit(benchmark::kMillisecond);

// Tracing's pay-for-what-you-use claim, measured: a cold eager chain-64
// build with the trace slot null (traced:0) against the same build
// recording every span (traced:1). The null side is the disabled path
// every production query takes without `"trace":true` — one predictable
// branch per instrumentation site — and the baseline gate holds it to
// the pre-instrumentation build time; the traced side prices the full
// recorder (mutex, clock reads, span storage).
void BM_TraceOverhead(benchmark::State& state) {
  const bool traced = state.range(0) != 0;
  DdsSystem system = ChainSystem(64, 1);
  AllStructuresClass cls(GraphZooSchema());
  std::size_t spans = 0;
  for (auto _ : state) {
    TraceRecorder recorder;
    SolveOptions options;
    options.build_witness = false;
    options.strategy = SolveStrategy::kEager;
    options.trace = traced ? &recorder : nullptr;
    SolveResult result = SolveEmptiness(system, cls, options);
    benchmark::DoNotOptimize(result.nonempty);
    spans = recorder.span_count();
  }
  state.counters["spans"] = static_cast<double>(spans);
}
BENCHMARK(BM_TraceOverhead)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"traced"})
    ->Unit(benchmark::kMillisecond);

// The sharded parallel sweep vs the serial eager build on the 64-state
// chain: each worker owns one round-robin slice of the 2k joint-member
// stream (guard evaluation, canonicalization and interning happen in the
// workers), and the deterministic merge renumbers shapes so the graph is
// bit-identical to the serial build at every thread count.
void BM_ParallelBuild(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  DdsSystem system = ChainSystem(64, 1);
  AllStructuresClass cls(GraphZooSchema());
  SolveOptions options;
  options.build_witness = false;
  options.strategy = SolveStrategy::kEager;
  options.num_threads = threads;
  SolveResult last;
  for (auto _ : state) {
    last = SolveEmptiness(system, cls, options);
    benchmark::DoNotOptimize(last.nonempty);
  }
  state.counters["members"] =
      static_cast<double>(last.stats.members_enumerated);
  state.counters["members_generated"] =
      static_cast<double>(last.stats.members_generated);
  state.counters["edges"] = static_cast<double>(last.stats.edges);
}
BENCHMARK(BM_ParallelBuild)
    ->ArgsProduct({{1, 2, 4, 8}})
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// One member of the 2k joint stream, materialized so the kernel benchmarks
// below replay the stream without re-enumerating it.
struct JointMember {
  Structure s;
  std::vector<Elem> marks;
};

std::vector<JointMember> MaterializeJointMembers(const AllStructuresClass& cls,
                                                 int k) {
  std::vector<JointMember> members;
  cls.EnumerateGenerated(
      2 * k, [&](const Structure& s, std::span<const Elem> marks) {
        members.push_back(JointMember{s, {marks.begin(), marks.end()}});
      });
  return members;
}

// The sweep inner loop in isolation — no solver, no cache, no threads: the
// chain-64 joint stream is materialized once, the graph is warmed with one
// full pass, and each iteration replays ProcessJointMember over the whole
// stream. Steady state is the per-member cost the tentpole compiled:
// bytecode guard evaluation, the direct projection key, a raw-memo hit and
// an edge-dedup hit per guard hit — nothing interned, nothing recorded.
void BM_SweepKernel(benchmark::State& state) {
  DdsSystem system = ChainSystem(64, 1);
  AllStructuresClass cls(GraphZooSchema());
  std::vector<FormulaRef> guards;
  for (const TransitionRule& rule : system.rules()) {
    guards.push_back(rule.guard);
  }
  const int k = system.num_registers();
  const std::vector<JointMember> members = MaterializeJointMembers(cls, k);

  SubTransitionGraph graph(guards, k);
  const auto keep_going = [](int, int, int, int) { return true; };
  SolveStats stats;
  for (const JointMember& m : members) {
    graph.ProcessJointMember(m.s, m.marks, stats, keep_going);
  }

  for (auto _ : state) {
    for (const JointMember& m : members) {
      graph.ProcessJointMember(m.s, m.marks, stats, keep_going);
    }
  }
  state.counters["members"] = static_cast<double>(members.size());
  state.counters["edges"] = static_cast<double>(graph.num_edges());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(members.size()));
}
BENCHMARK(BM_SweepKernel)->Unit(benchmark::kMicrosecond);

// Projection interning throughput with the global allocation counter
// wrapped around the measured loop. hot:0 interns the chain joint stream
// into a fresh interner every iteration (every distinct projection
// canonicalizes and allocates); hot:1 replays it against a warmed interner,
// where every member is a raw-memo hit served straight from the arena —
// allocs_per_member reports the heap traffic per swept member and must be
// zero on the hot path (intern_test pins the same contract as an assert).
void BM_InternThroughput(benchmark::State& state) {
  const bool hot = state.range(0) == 1;
  AllStructuresClass cls(GraphZooSchema());
  const std::vector<JointMember> members = MaterializeJointMembers(cls, 1);

  ConfigInterner warmed;
  for (const JointMember& m : members) {
    warmed.InternProjection(m.s, m.marks);
  }

  std::uint64_t allocs = 0;
  std::int64_t processed = 0;
  for (auto _ : state) {
    const std::uint64_t before =
        g_heap_allocs.load(std::memory_order_relaxed);
    if (hot) {
      for (const JointMember& m : members) {
        benchmark::DoNotOptimize(warmed.InternProjection(m.s, m.marks));
      }
    } else {
      ConfigInterner cold;
      for (const JointMember& m : members) {
        benchmark::DoNotOptimize(cold.InternProjection(m.s, m.marks));
      }
    }
    allocs += g_heap_allocs.load(std::memory_order_relaxed) - before;
    processed += static_cast<std::int64_t>(members.size());
  }
  state.counters["allocs_per_member"] =
      processed ? static_cast<double>(allocs) / static_cast<double>(processed)
                : 0.0;
  state.counters["raw_memo_hits"] = static_cast<double>(warmed.raw_hits());
  state.SetItemsProcessed(processed);
}
BENCHMARK(BM_InternThroughput)
    ->ArgsProduct({{0, 1}})
    ->ArgNames({"hot"})
    ->Unit(benchmark::kMicrosecond);

// Cold resume at a 25/50/75% cursor: a partial graph — the state an
// early-exited query persists — is restored and finished with BuildFull.
// The relational backend's native EnumerateGeneratedFrom seeks straight
// to the cursor position in the set-partition × atom-mask grid, so the
// resume generates only the unswept suffix; `members_generated` reports
// exactly that suffix (the default adapter would report the full stream
// at every cursor).
void BM_ColdResume(benchmark::State& state) {
  const int pct = static_cast<int>(state.range(0));
  DdsSystem system = ChainSystem(64, 1);
  AllStructuresClass cls(GraphZooSchema());
  std::vector<FormulaRef> guards;
  for (const TransitionRule& rule : system.rules()) {
    guards.push_back(rule.guard);
  }
  const int k = system.num_registers();
  std::uint64_t joint_total = 0;
  cls.EnumerateGenerated(2 * k, [&](const Structure&, std::span<const Elem>) {
    ++joint_total;
  });
  const std::uint64_t cutoff = joint_total * pct / 100;

  // The suspended build: full initial sweep, joint sweep up to the cursor.
  SubTransitionGraph partial(guards, k);
  SolveStats partial_stats;
  cls.EnumerateGeneratedFrom(
      k, 0,
      [&](const Structure& s, std::span<const Elem> marks, std::uint64_t pos) {
        partial.AddInitialMember(s, marks);
        partial.AdvanceCursorTo({kCursorPhaseInitial, pos + 1});
        return true;
      });
  partial.AdvanceCursorTo({kCursorPhaseJoint, 0});
  cls.EnumerateGeneratedFrom(
      2 * k, 0,
      [&](const Structure& s, std::span<const Elem> marks, std::uint64_t pos) {
        if (pos >= cutoff) return false;
        partial.ProcessJointMember(s, marks, partial_stats,
                                   [](int, int, int, int) { return true; });
        partial.AdvanceCursorTo({kCursorPhaseJoint, pos + 1});
        return true;
      });
  const std::string bytes = SerializeGraph(partial, "bench-cold-resume");

  SolveStats last;
  for (auto _ : state) {
    // Restore + finish: the cold-process resume path (the store's load is
    // this deserialization plus a file read).
    std::shared_ptr<SubTransitionGraph> graph = DeserializeGraph(
        bytes, "bench-cold-resume", cls.schema(), guards, k);
    SolveStats stats;
    graph->BuildFull(cls, stats);
    benchmark::DoNotOptimize(graph->num_edges());
    last = stats;
  }
  state.counters["members_generated"] =
      static_cast<double>(last.members_generated);
  state.counters["members"] = static_cast<double>(last.members_enumerated);
  state.counters["joint_stream"] = static_cast<double>(joint_total);
}
BENCHMARK(BM_ColdResume)
    ->ArgsProduct({{25, 50, 75}})
    ->ArgNames({"cursor_pct"})
    ->Unit(benchmark::kMillisecond);

// The query service end to end on the 64-state chain: a pool of
// 1/4/8 workers serving batches of identical cache-hot queries (the first
// batch's leader builds the graph once; everything after is pure BFS
// replay over the shared cache). Measures the broker overhead — queueing,
// single-flight bookkeeping, future resolution — on top of BM_CachedQuery's
// raw solve time, and how it scales with concurrent submitters.
void BM_ServiceThroughput(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  constexpr int kQueriesPerBatch = 32;

  QueryService::Options options;
  options.num_workers = workers;
  QueryService service(options);

  QueryRequest request;
  request.kind = QueryKind::kSystem;
  request.system = std::make_shared<DdsSystem>(ChainSystem(64, 1));
  request.cls = std::make_shared<AllStructuresClass>(GraphZooSchema());
  request.strategy = SolveStrategy::kEager;

  // Warm: one build, so every measured query is a cache hit.
  service.Submit(request).get();

  for (auto _ : state) {
    std::vector<QueryRequest> batch(kQueriesPerBatch, request);
    std::vector<std::future<QueryResult>> futures =
        service.SubmitBatch(std::move(batch));
    for (auto& future : futures) {
      benchmark::DoNotOptimize(future.get().nonempty);
    }
  }
  const ServiceStats stats = service.Stats();
  state.counters["queries"] = static_cast<double>(stats.queries);
  state.counters["coalesced"] = static_cast<double>(stats.coalesced_joins);
  state.counters["cache_hits"] = static_cast<double>(stats.cache_hits);
  state.counters["members_generated"] =
      static_cast<double>(stats.members_generated);
  state.SetItemsProcessed(state.iterations() * kQueriesPerBatch);
}
BENCHMARK(BM_ServiceThroughput)
    ->ArgsProduct({{1, 4, 8}})
    ->ArgNames({"workers"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The chain-n system as one spec-described JSONL query line (eager, so
// the warmup builds the complete graph and every measured query is a
// cache-hot replay) — what a real amalgamd client would pipe in.
std::string ChainQueryLine(int n) {
  std::string states = R"json([{"name":"s0","initial":true})json";
  for (int i = 1; i < n; ++i) {
    states += R"json(,{"name":"s)json" + std::to_string(i) + "\"";
    if (i == n - 1) states += R"json(,"accepting":true)json";
    states += "}";
  }
  states += "]";
  std::string rules = "[";
  for (int i = 1; i < n; ++i) {
    if (i > 1) rules += ",";
    rules += R"json({"from":"s)json" + std::to_string(i - 1) +
             R"json(","to":"s)json" + std::to_string(i) +
             R"json(","guard":"E(x0_old, x0_new)"})json";
  }
  rules += "]";
  return R"json({"id":1,"kind":"system","class":"all","strategy":"eager",)json"
         R"json("schema":{"relations":[["E",2],["red",1]]},)json"
         R"json("system":{"registers":["x0"],"states":)json" +
         states + R"json(,"rules":)json" + rules + "}}";
}

// The daemon end to end over a Unix-socket loopback: N concurrent clients
// each pipeline a 32-query burst (the chain-64 spec above, cache-hot
// after warmup) and read their 32 ordered responses back. Measures the
// full transport stack — epoll event loop, line framing, per-connection
// session writers, socket syscalls — on top of BM_ServiceThroughput's
// broker overhead.
void BM_DaemonThroughput(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  constexpr int kQueriesPerBatch = 32;

  QueryService::Options options;
  options.num_workers = 4;
  QueryService service(options);
  DaemonServerOptions net;
  net.uds_path = (std::filesystem::temp_directory_path() /
                  ("amalgam_bench_" + std::to_string(::getpid()) + ".sock"))
                     .string();
  DaemonServer server(service, net);
  server.Start();

  std::string burst;
  for (int i = 0; i < kQueriesPerBatch; ++i) burst += ChainQueryLine(64) + "\n";

  auto connect_client = [&net] {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, net.uds_path.c_str(), net.uds_path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      std::perror("bench connect");
      std::abort();
    }
    return fd;
  };
  auto run_batch = [&burst](int fd) {
    std::size_t sent = 0;
    while (sent < burst.size()) {
      const ssize_t n = ::send(fd, burst.data() + sent, burst.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return;
      sent += static_cast<std::size_t>(n);
    }
    int newlines = 0;
    char buf[4096];
    while (newlines < kQueriesPerBatch) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) return;
      for (ssize_t i = 0; i < n; ++i) newlines += buf[i] == '\n';
    }
  };

  std::vector<int> fds;
  fds.reserve(clients);
  for (int c = 0; c < clients; ++c) fds.push_back(connect_client());
  run_batch(fds[0]);  // warm: the one eager build

  for (auto _ : state) {
    std::vector<std::thread> pumps;
    pumps.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      pumps.emplace_back([&run_batch, fd = fds[c]] { run_batch(fd); });
    }
    for (auto& pump : pumps) pump.join();
  }

  const ServiceStats stats = service.Stats();
  state.counters["queries"] = static_cast<double>(stats.queries);
  state.counters["cache_hits"] = static_cast<double>(stats.cache_hits);
  state.SetItemsProcessed(state.iterations() * clients * kQueriesPerBatch);

  for (int fd : fds) ::close(fd);
  server.Stop();
  service.Shutdown();
}
BENCHMARK(BM_DaemonThroughput)
    ->ArgsProduct({{1, 4, 8}})
    ->ArgNames({"clients"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_RegistersSweep(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  DdsSystem system = ChainSystem(3, k);
  AllStructuresClass cls(GraphZooSchema());
  SolveResult last;
  for (auto _ : state) {
    last = SolveEmptiness(system, cls, SolveOptions{.build_witness = false});
    benchmark::DoNotOptimize(last.nonempty);
  }
  state.counters["members"] =
      static_cast<double>(last.stats.members_enumerated);
}
// k = 3 over a binary relation needs 2^36 candidates — the PSPACE wall; we
// sweep to k = 2 here and show k = 3 on a unary-only schema below.
BENCHMARK(BM_RegistersSweep)->DenseRange(1, 2)->Unit(benchmark::kMillisecond);

void BM_RegistersUnarySchema(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Schema u;
  u.AddRelation("p", 1);
  auto schema = MakeSchema(std::move(u));
  DdsSystem system(schema);
  std::vector<std::string> regs;
  for (int r = 0; r < k; ++r) {
    system.AddRegister("x" + std::to_string(r));
  }
  int a = system.AddState("a", true);
  int b = system.AddState("b", false, true);
  system.AddRule(a, b, "p(x0_new) & !p(x0_old)");
  AllStructuresClass cls(schema);
  SolveResult last;
  for (auto _ : state) {
    last = SolveEmptiness(system, cls, SolveOptions{.build_witness = false});
    benchmark::DoNotOptimize(last.nonempty);
  }
  state.counters["members"] =
      static_cast<double>(last.stats.members_enumerated);
}
BENCHMARK(BM_RegistersUnarySchema)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace amalgam

namespace {

struct BenchRow {
  std::string name;
  double real_time = 0;
};

// Minimal extraction from google-benchmark's pretty-printed JSON: each
// benchmark object opens with its "name" line and later carries a
// "real_time" line; aggregate rows repeat the pattern and are kept too
// (their names are distinct). No JSON library is available in-tree, and
// these two keys are all the trajectory needs.
std::vector<BenchRow> ParseBenchJson(const std::string& path) {
  std::vector<BenchRow> rows;
  std::ifstream in(path);
  if (!in) return rows;
  std::string line;
  std::string pending_name;
  auto trimmed = [](const std::string& s) {
    const std::size_t b = s.find_first_not_of(" \t");
    return b == std::string::npos ? std::string() : s.substr(b);
  };
  while (std::getline(in, line)) {
    const std::string t = trimmed(line);
    if (t.rfind("\"name\":", 0) == 0) {
      const std::size_t open = t.find('"', 7);
      const std::size_t close =
          open == std::string::npos ? std::string::npos : t.find('"', open + 1);
      if (close != std::string::npos) {
        pending_name = t.substr(open + 1, close - open - 1);
      }
    } else if (t.rfind("\"real_time\":", 0) == 0 && !pending_name.empty()) {
      rows.push_back(BenchRow{pending_name, std::atof(t.c_str() + 12)});
      pending_name.clear();
    }
  }
  return rows;
}

// The build type a run was produced under, read back from the JSON context
// (main records it via AddCustomContext). Empty when the file predates the
// field — treated as a mismatch against any recorded type, because an
// unknown optimization level is exactly the hazard the check exists for.
std::string ReadBuildType(const std::string& path) {
  std::ifstream in(path);
  const std::string key = "\"amalgam_library_build_type\":";
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t at = line.find(key);
    if (at == std::string::npos) continue;
    const std::size_t open = line.find('"', at + key.size());
    const std::size_t close =
        open == std::string::npos ? std::string::npos : line.find('"', open + 1);
    if (close != std::string::npos) {
      return line.substr(open + 1, close - open - 1);
    }
  }
  return {};
}

// Prints the per-benchmark delta of the fresh run against the committed
// baseline (bench/e2_baseline.json) — the perf trajectory successive PRs
// compare against — and returns the worst regression in percent (0 when
// nothing regressed or nothing was comparable). Refresh the baseline by
// copying a fresh BENCH_e2.json over it. Rows with a sub-0.1 ms baseline
// are printed but excluded from the regression verdict: at that scale the
// delta is timer noise, not trajectory. Runs whose recorded build type
// differs from the baseline's are not diffed at all: a Debug run against a
// Release baseline measures the optimizer, not the code, and would either
// trip the gate spuriously or launder a real regression as "build noise".
double PrintBaselineDelta(const std::string& fresh_path,
                          const std::string& baseline_path) {
  std::vector<BenchRow> fresh = ParseBenchJson(fresh_path);
  std::vector<BenchRow> baseline = ParseBenchJson(baseline_path);
  if (fresh.empty()) return 0.0;
  if (baseline.empty()) {
    std::printf("\nNo baseline at %s; commit a fresh BENCH_e2.json there to "
                "start the trajectory.\n",
                baseline_path.c_str());
    return 0.0;
  }
  const std::string fresh_type = ReadBuildType(fresh_path);
  const std::string baseline_type = ReadBuildType(baseline_path);
  if (fresh_type != baseline_type) {
    std::printf(
        "\nSkipping baseline delta: this run was built '%s' but the baseline "
        "(%s) records '%s'. Cross-build-type deltas measure the optimizer, "
        "not the code — rerun with the baseline's build type, or refresh the "
        "baseline by copying this build type's BENCH_e2.json over it.\n",
        fresh_type.empty() ? "(unrecorded)" : fresh_type.c_str(),
        baseline_path.c_str(),
        baseline_type.empty() ? "(unrecorded)" : baseline_type.c_str());
    return 0.0;
  }
  constexpr double kNoiseFloorMs = 0.1;
  double worst_regress_pct = 0.0;
  std::printf("\nDelta vs committed baseline (%s), real time [ms]:\n",
              baseline_path.c_str());
  for (const BenchRow& row : fresh) {
    const BenchRow* prev = nullptr;
    for (const BenchRow& b : baseline) {
      if (b.name == row.name) {
        prev = &b;
        break;
      }
    }
    if (!prev) {
      std::printf("  %-44s %31s %10.3f\n", row.name.c_str(), "(new)",
                  row.real_time);
    } else if (prev->real_time > 0) {
      const double pct =
          100.0 * (row.real_time - prev->real_time) / prev->real_time;
      std::printf("  %-44s %10.3f -> %10.3f  (%+6.1f%%)\n", row.name.c_str(),
                  prev->real_time, row.real_time, pct);
      if (prev->real_time >= kNoiseFloorMs && pct > worst_regress_pct) {
        worst_regress_pct = pct;
      }
    }
  }
  return worst_regress_pct;
}

}  // namespace

// Custom main: emit machine-readable JSON (BENCH_e2.json) by default so
// successive PRs accumulate a perf trajectory, and print the delta against
// the committed baseline; explicit --benchmark_out flags still win (and
// skip the comparison).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  bool has_format = false;
  for (int i = 1; i < argc; ++i) {
    // Exactly --benchmark_out=...; must not match --benchmark_out_format.
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
    if (std::string(argv[i]).rfind("--benchmark_out_format=", 0) == 0) {
      has_format = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_e2.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) args.push_back(out_flag.data());
  if (!has_out && !has_format) args.push_back(format_flag.data());
  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) {
    return 1;
  }
#ifdef AMALGAM_LIBRARY_BUILD_TYPE
  // Stamp the library's CMAKE_BUILD_TYPE into the JSON context so the
  // baseline comparison can refuse cross-build-type diffs. (libbenchmark's
  // own "library_build_type" context key describes *its* build, not ours.)
  benchmark::AddCustomContext("amalgam_library_build_type",
                              AMALGAM_LIBRARY_BUILD_TYPE);
#endif
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!has_out) {
#ifdef AMALGAM_E2_BASELINE
    const double worst = PrintBaselineDelta("BENCH_e2.json",
                                            AMALGAM_E2_BASELINE);
#else
    const double worst = PrintBaselineDelta("BENCH_e2.json",
                                            "../bench/e2_baseline.json");
#endif
    // Opt-in perf gate (CI sets AMALGAM_E2_MAX_REGRESS_PCT=25): a
    // regression past the threshold fails the run instead of just printing.
    if (const char* gate = std::getenv("AMALGAM_E2_MAX_REGRESS_PCT")) {
      const double threshold = std::atof(gate);
      if (threshold > 0 && worst > threshold) {
        std::fprintf(stderr,
                     "\nFAIL: worst benchmark regression %+.1f%% exceeds the "
                     "%.0f%% gate (AMALGAM_E2_MAX_REGRESS_PCT)\n",
                     worst, threshold);
        return 1;
      }
    }
  }
  return 0;
}
