// E9 — Lemma 1: PSPACE-hardness. The linear-space TM reduction's output
// grows linearly in the tape, but deciding it blows up exponentially in
// the register count (the partition lattice over 2k marks) — the lower
// bound showing through the generic solver.
#include <benchmark/benchmark.h>

#include "counter/reductions.h"
#include "fraisse/relational.h"
#include "solver/emptiness.h"

namespace amalgam {
namespace {

// A TM that sweeps right flipping 0 -> 1, then accepts at the right end.
LinearTm SweepTm(int tape) {
  LinearTm tm;
  tm.tape_len = tape;
  int s = tm.AddState();
  int acc = tm.AddState();
  tm.start = s;
  tm.accept = acc;
  tm.SetTransition(s, 0, 1, +1, s);
  tm.SetTransition(s, 1, 1, 0, acc);
  return tm;
}

void BM_ReductionSize(benchmark::State& state) {
  const int tape = static_cast<int>(state.range(0));
  LinearTm tm = SweepTm(tape);
  std::size_t rules = 0;
  for (auto _ : state) {
    DdsSystem system = LinearSpaceTmSystem(tm);
    rules = system.rules().size();
    benchmark::DoNotOptimize(rules);
  }
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(BM_ReductionSize)->DenseRange(1, 8);

void BM_SolveReducedSystem(benchmark::State& state) {
  const int tape = static_cast<int>(state.range(0));
  LinearTm tm = SweepTm(tape);
  DdsSystem system = LinearSpaceTmSystem(tm);
  AllStructuresClass cls(system.schema_ref());
  SolveResult last;
  for (auto _ : state) {
    last = SolveEmptiness(system, cls, SolveOptions{.build_witness = false});
    benchmark::DoNotOptimize(last.nonempty);
  }
  state.counters["nonempty"] = last.nonempty ? 1 : 0;
  state.counters["members"] =
      static_cast<double>(last.stats.members_enumerated);
}
// tape n => n + 1 registers => Bell(2n + 2) candidates: 2 -> 4140,
// 3 -> 115975, 4 -> 4213597.
BENCHMARK(BM_SolveReducedSystem)->DenseRange(1, 3)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace amalgam

BENCHMARK_MAIN();
