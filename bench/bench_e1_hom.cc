// E1 — Theorem 4: emptiness over HOM(H) via the Lemma 7 lift is decided by
// the small-configuration search; cost grows with the template size (the
// color alphabet multiplies the candidate space). Also contrasts the raw
// class (unsound) with the lift.
#include <benchmark/benchmark.h>

#include "fraisse/hom_class.h"
#include "solver/emptiness.h"
#include "system/zoo.h"

namespace amalgam {
namespace {

// Template: a red k-clique plus one absorbing white node. Odd red cycles
// exist in HOM iff the red part allows them (k >= 3).
Structure RedCliqueTemplate(int k) {
  Structure h(GraphZooSchema(), k + 1);
  for (Elem i = 0; i < static_cast<Elem>(k); ++i) {
    h.SetHolds1(1, i);
    for (Elem j = 0; j < static_cast<Elem>(k); ++j) {
      if (i != j) h.SetHolds2(0, i, j);
    }
  }
  for (Elem i = 0; i <= static_cast<Elem>(k); ++i) {
    h.SetHolds2(0, i, k);
    h.SetHolds2(0, k, i);
  }
  return h;
}

void BM_LiftedHomEmptiness(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  DdsSystem system = OddRedCycleSystem();
  LiftedHomClass cls(RedCliqueTemplate(k));
  SolveResult last;
  for (auto _ : state) {
    last = SolveEmptiness(system, cls, SolveOptions{.build_witness = false});
    benchmark::DoNotOptimize(last.nonempty);
  }
  state.counters["nonempty"] = last.nonempty ? 1 : 0;  // 1 iff k >= 3
  state.counters["members"] =
      static_cast<double>(last.stats.members_enumerated);
  state.counters["edges"] = static_cast<double>(last.stats.edges);
  state.counters["configs"] = static_cast<double>(last.stats.configs);
}
BENCHMARK(BM_LiftedHomEmptiness)->DenseRange(2, 4)->Unit(benchmark::kMillisecond);

void BM_RawHomFalsePositive(benchmark::State& state) {
  // The unsound baseline: raw HOM(K2-red + white) claims NONEMPTY.
  DdsSystem system = OddRedCycleSystem();
  HomClass cls(RedCliqueTemplate(2));
  SolveResult last;
  for (auto _ : state) {
    last = SolveEmptiness(system, cls, SolveOptions{.build_witness = false});
    benchmark::DoNotOptimize(last.nonempty);
  }
  state.counters["nonempty_but_wrong"] = last.nonempty ? 1 : 0;
}
BENCHMARK(BM_RawHomFalsePositive)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace amalgam

BENCHMARK_MAIN();
