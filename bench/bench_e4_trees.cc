// E4 — Theorem 3: tree emptiness. Fixed automaton: cost polynomial-ish in
// the system; growing the pattern cap (the proxy for automaton size /
// blowup) blows the candidate space up — the EXPSPACE face of the combined
// problem.
#include <benchmark/benchmark.h>

#include "trees/solve.h"
#include "trees/zoo.h"

namespace amalgam {
namespace {

void BM_DescendSteps(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  TreeAutomaton chains = TaChains();
  DdsSystem system = DescendSystem(chains, steps);
  TreeSolveResult last;
  for (auto _ : state) {
    last = SolveTreeEmptiness(system, chains, /*witness_size_cap=*/0,
                              /*extra_pattern_cap=*/3);
    benchmark::DoNotOptimize(last.nonempty);
  }
  state.counters["members"] =
      static_cast<double>(last.stats.members_enumerated);
}
BENCHMARK(BM_DescendSteps)->DenseRange(1, 5)->Unit(benchmark::kMillisecond);

void BM_PatternCapSweep(benchmark::State& state) {
  const int cap = static_cast<int>(state.range(0));
  TreeAutomaton comb = TaComb();
  DdsSystem system = DescendSystem(comb, 2);
  TreeSolveResult last;
  for (auto _ : state) {
    last = SolveTreeEmptiness(system, comb, /*witness_size_cap=*/0, cap);
    benchmark::DoNotOptimize(last.nonempty);
  }
  state.counters["members"] =
      static_cast<double>(last.stats.members_enumerated);
  state.counters["configs"] = static_cast<double>(last.stats.configs);
}
BENCHMARK(BM_PatternCapSweep)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

void BM_TreeBruteForceBaseline(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  TreeAutomaton comb = TaComb();
  DdsSystem system = DescendSystem(comb, steps);
  for (auto _ : state) {
    auto w = BruteForceTreeSearch(system, comb, steps + 2);
    benchmark::DoNotOptimize(w.has_value());
  }
}
BENCHMARK(BM_TreeBruteForceBaseline)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace amalgam

BENCHMARK_MAIN();
