// E3 — Theorem 10: word emptiness cost vs. automaton size. The pattern
// space grows with the state count of the NFA (|Q|^s candidates per
// partition, s bounded by marks + 2 * components), matching the
// PSPACE-completeness of the combined problem.
#include <benchmark/benchmark.h>

#include "words/solve.h"
#include "words/zoo.h"

namespace amalgam {
namespace {

void BM_ModCounterSweep(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  Nfa nfa = NfaModCounter(p);
  // Two strictly increasing hops.
  auto schema = MakeWordSchema({"a"});
  DdsSystem system(schema);
  system.AddRegister("x");
  int s0 = system.AddState("s0", true);
  int s1 = system.AddState("s1");
  int s2 = system.AddState("s2", false, true);
  system.AddRule(s0, s1, "lt(x_old, x_new)");
  system.AddRule(s1, s2, "lt(x_old, x_new)");
  WordSolveResult last;
  for (auto _ : state) {
    last = SolveWordEmptiness(system, nfa, /*build_witness=*/false);
    benchmark::DoNotOptimize(last.nonempty);
  }
  state.counters["members"] =
      static_cast<double>(last.stats.members_enumerated);
  state.counters["edges"] = static_cast<double>(last.stats.edges);
}
BENCHMARK(BM_ModCounterSweep)->DenseRange(2, 6)->Unit(benchmark::kMillisecond);

void BM_WitnessReconstruction(benchmark::State& state) {
  // Amalgamation + completion included (build_witness = true): Theorem 10
  // with a constructive answer. The witness for mod-p has length p.
  const int p = static_cast<int>(state.range(0));
  Nfa nfa = NfaModCounter(p);
  auto schema = MakeWordSchema({"a"});
  DdsSystem system(schema);
  system.AddRegister("x");
  int s0 = system.AddState("s0", true);
  int s1 = system.AddState("s1", false, true);
  system.AddRule(s0, s1, "lt(x_old, x_new)");
  std::size_t witness_len = 0;
  for (auto _ : state) {
    auto r = SolveWordEmptiness(system, nfa, /*build_witness=*/true);
    witness_len = r.witness.has_value() ? r.witness->letters.size() : 0;
    benchmark::DoNotOptimize(witness_len);
  }
  state.counters["witness_len"] = static_cast<double>(witness_len);
}
BENCHMARK(BM_WitnessReconstruction)->DenseRange(2, 6)->Unit(benchmark::kMillisecond);

void BM_BruteForceBaseline(benchmark::State& state) {
  // The naive decision procedure: enumerate words up to the length where
  // the witness appears. Exponential in the witness length, versus the
  // amalgamation solver's pattern search.
  const int p = static_cast<int>(state.range(0));
  Nfa nfa = NfaModCounter(p);
  auto schema = MakeWordSchema({"a"});
  DdsSystem system(schema);
  system.AddRegister("x");
  int s0 = system.AddState("s0", true);
  int s1 = system.AddState("s1", false, true);
  system.AddRule(s0, s1, "lt(x_old, x_new)");
  for (auto _ : state) {
    auto w = BruteForceWordSearch(system, nfa, p + 2);
    benchmark::DoNotOptimize(w.has_value());
  }
}
BENCHMARK(BM_BruteForceBaseline)->DenseRange(2, 6)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace amalgam

BENCHMARK_MAIN();
