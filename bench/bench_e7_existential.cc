// E7 — Fact 2: eliminating positive existential quantifiers from guards is
// a linear-time compilation (one fresh register per quantifier, shared
// across rules).
#include <benchmark/benchmark.h>

#include "system/dds.h"
#include "system/zoo.h"

namespace amalgam {
namespace {

DdsSystem SystemWithQuantifiers(int quantifiers, int rules) {
  DdsSystem system(GraphZooSchema());
  system.AddRegister("x");
  int a = system.AddState("a", true);
  int b = system.AddState("b", false, true);
  for (int r = 0; r < rules; ++r) {
    std::string guard = "x_new = x_old";
    std::string binders;
    for (int q = 0; q < quantifiers; ++q) {
      std::string v = "z" + std::to_string(q);
      binders += (q ? ", " : "") + v;
    }
    if (quantifiers > 0) {
      std::string body = "E(x_old, z0)";
      for (int q = 1; q < quantifiers; ++q) {
        body += " & E(z" + std::to_string(q - 1) + ", z" +
                std::to_string(q) + ")";
      }
      guard += " & exists " + binders + ": (" + body + ")";
    }
    system.AddRule(a, r % 2 == 0 ? b : a, guard);
  }
  return system;
}

void BM_EliminateExistentials(benchmark::State& state) {
  const int q = static_cast<int>(state.range(0));
  DdsSystem system = SystemWithQuantifiers(q, 4);
  int registers = 0;
  for (auto _ : state) {
    DdsSystem qf = EliminateExistentials(system);
    registers = qf.num_registers();
    benchmark::DoNotOptimize(registers);
  }
  state.counters["registers_after"] = registers;
}
BENCHMARK(BM_EliminateExistentials)->DenseRange(1, 6);

void BM_EliminationScalesWithRules(benchmark::State& state) {
  const int rules = static_cast<int>(state.range(0));
  DdsSystem system = SystemWithQuantifiers(3, rules);
  for (auto _ : state) {
    DdsSystem qf = EliminateExistentials(system);
    benchmark::DoNotOptimize(qf.rules().size());
  }
}
BENCHMARK(BM_EliminationScalesWithRules)->RangeMultiplier(2)->Range(2, 64);

}  // namespace
}  // namespace amalgam

BENCHMARK_MAIN();
