// E8 — the soundness proof made executable: reconstructing a concrete
// witness database by amalgamating the step databases along the abstract
// path. Cost grows with the path length; the result always validates.
#include <benchmark/benchmark.h>

#include "fraisse/relational.h"
#include "solver/emptiness.h"
#include "system/concrete.h"

namespace amalgam {
namespace {

DdsSystem AscendingChain(int length, const SchemaRef& schema) {
  DdsSystem system(schema);
  system.AddRegister("x");
  int prev = system.AddState("s0", true, length == 0);
  for (int i = 1; i <= length; ++i) {
    int next = system.AddState("s" + std::to_string(i), false, i == length);
    system.AddRule(prev, next, "lt(x_old, x_new)");
    prev = next;
  }
  return system;
}

void BM_WitnessOnOff(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  const bool build = state.range(1) != 0;
  LinearOrderClass cls;
  DdsSystem system = AscendingChain(length, cls.schema());
  bool validated = false;
  for (auto _ : state) {
    SolveResult r =
        SolveEmptiness(system, cls, SolveOptions{.build_witness = build});
    if (build) {
      validated = r.witness_db.has_value() &&
                  ValidateAcceptingRun(system, *r.witness_db, *r.witness_run);
    }
    benchmark::DoNotOptimize(r.nonempty);
  }
  if (build) state.counters["validated"] = validated ? 1 : 0;
}
BENCHMARK(BM_WitnessOnOff)
    ->ArgsProduct({{2, 4, 8, 16, 32}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace amalgam

BENCHMARK_MAIN();
